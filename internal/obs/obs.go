// Package obs is the observability layer for the SuperMem simulator:
// windowed time-series samplers, latency histograms, and a Chrome
// trace_event exporter. It is always compiled in; a nil *Recorder is a
// valid disabled recorder whose methods are branch-predictable no-ops,
// so instrumented hot paths cost a single nil check when observability
// is off.
package obs

import (
	"fmt"
	"strings"
)

// HistID names one of the recorder's latency histograms.
type HistID int

const (
	// HistTxLatency is end-to-end transaction latency in cycles.
	HistTxLatency HistID = iota
	// HistReadStall is per-read stall cycles (memory read completion
	// minus request cycle).
	HistReadStall
	// HistWQStall is per-enqueue write-queue admission stall cycles.
	HistWQStall
	// HistReadRetry is per-read retry attempts consumed recovering from
	// transient bank faults (observed only for reads that needed >0).
	HistReadRetry

	numHists
)

func (h HistID) String() string {
	switch h {
	case HistTxLatency:
		return "tx_latency"
	case HistReadStall:
		return "read_stall"
	case HistWQStall:
		return "wq_stall"
	case HistReadRetry:
		return "read_retry"
	}
	return fmt.Sprintf("hist(%d)", int(h))
}

// SeriesID names one of the recorder's windowed time series.
type SeriesID int

const (
	// SeriesWQOccupancy is the write-queue occupancy level (gauge).
	SeriesWQOccupancy SeriesID = iota
	// SeriesCtrHits counts counter-cache hits per window.
	SeriesCtrHits
	// SeriesCtrMisses counts counter-cache misses per window.
	SeriesCtrMisses
	// SeriesCoalesced counts CWC counter-write removals per window.
	SeriesCoalesced
	// SeriesCtrEnqueues counts counter-write enqueues per window.
	SeriesCtrEnqueues
	// SeriesEngineEvents counts simulator events fired per window.
	SeriesEngineEvents
	// SeriesBankRemaps counts accesses remapped away from quarantined
	// banks per window.
	SeriesBankRemaps
	// SeriesCtrDeferred counts counter writes deferred by relaxed
	// counter-persistence schemes (Osiris's stop-loss) per window.
	SeriesCtrDeferred
	// SeriesTreeWrites counts integrity-tree node writes enqueued per
	// window (integrity-tree schemes only).
	SeriesTreeWrites
	// SeriesThrottleStalls counts minor-counter bumps stalled by the
	// overflow throttle's token bucket per window.
	SeriesThrottleStalls
	// SeriesWearRemaps counts write services the wear-leveling rotation
	// moved off their home bank per window.
	SeriesWearRemaps
	// SeriesRecoveryBounded counts recovery passes that hit the
	// recovery-work bound and degraded to staged recovery per window.
	SeriesRecoveryBounded
	// SeriesMSHROccupancy is the number of outstanding MSHR entries on
	// an OoO core when a miss allocates one (gauge).
	SeriesMSHROccupancy
	// SeriesPrefetchIssued counts stride prefetches issued per window;
	// SeriesPrefetchUseful counts prefetched lines a later demand access
	// hit; SeriesPrefetchDropped counts candidates discarded for
	// write-queue pressure or a full MSHR file.
	SeriesPrefetchIssued
	SeriesPrefetchUseful
	SeriesPrefetchDropped

	numSeries
)

// Options configures a Recorder.
type Options struct {
	// Window is the sampling window in simulated cycles (default 4096).
	Window uint64
	// Trace enables trace_event buffering.
	Trace bool
	// MaxTraceEvents caps the trace buffer (default 1<<20); events past
	// the cap are counted, not silently lost.
	MaxTraceEvents int
}

// Recorder collects series, histograms, and (optionally) trace events
// for one simulation. It is not safe for concurrent use; in parallel
// benchmark runs each cell owns its recorder, which is what keeps
// serial and parallel output byte-identical.
//
// A nil *Recorder is the disabled recorder: every method no-ops.
type Recorder struct {
	window    uint64
	hists     [numHists]Histogram
	coreHists []Histogram // per-core tx-latency histograms (CoreObserve)
	series    [numSeries]series
	banks     []series // per-bank busy-cycle accumulators
	trace     *TraceBuffer
	end       uint64 // final cycle, set by Finish
}

// NewRecorder returns an enabled recorder.
func NewRecorder(o Options) *Recorder {
	if o.Window == 0 {
		o.Window = 4096
	}
	r := &Recorder{window: o.Window}
	r.series[SeriesWQOccupancy].kind = kindGauge
	for i := range r.series[1:] {
		r.series[i+1].kind = kindCount
	}
	r.series[SeriesMSHROccupancy].kind = kindGauge
	if o.Trace {
		r.trace = newTraceBuffer(o.MaxTraceEvents)
	}
	return r
}

// Window returns the sampling window in cycles (0 when disabled).
func (r *Recorder) Window() uint64 {
	if r == nil {
		return 0
	}
	return r.window
}

// TraceEnabled reports whether trace events are being buffered.
func (r *Recorder) TraceEnabled() bool { return r != nil && r.trace != nil }

// TraceStats returns the number of buffered and dropped trace events.
func (r *Recorder) TraceStats() (kept, dropped int) {
	if r == nil || r.trace == nil {
		return 0, 0
	}
	return r.trace.Len(), r.trace.Dropped()
}

// Observe records a value into a histogram.
func (r *Recorder) Observe(h HistID, v uint64) {
	if r == nil {
		return
	}
	r.hists[h].Observe(v)
}

// CoreObserve records a per-core transaction latency: the value lands in
// core's own histogram, alongside the merged HistTxLatency the caller
// records with Observe. Sharded experiments read the per-core histograms
// back with CoreTxHist to report per-shard tails and to Merge them into
// cross-shard quantiles.
func (r *Recorder) CoreObserve(core int, v uint64) {
	if r == nil {
		return
	}
	for len(r.coreHists) <= core {
		r.coreHists = append(r.coreHists, Histogram{})
	}
	r.coreHists[core].Observe(v)
}

// CoreTxHist returns core's tx-latency histogram, or nil when that core
// never recorded one.
func (r *Recorder) CoreTxHist(core int) *Histogram {
	if r == nil || core < 0 || core >= len(r.coreHists) {
		return nil
	}
	return &r.coreHists[core]
}

// RoleSplit merges the per-core tx-latency histograms into an
// attacker-vs-victim split: cores listed in attackers merge into the
// first histogram, every other recorded core into the second. The
// attack experiment reads victim tail latency under a co-located
// adversary from the victim half. Histogram merging is exact and
// order-independent, so the split is byte-identical at any worker
// parallelism and for any ordering of the attackers list.
func (r *Recorder) RoleSplit(attackers ...int) (attacker, victim Histogram) {
	if r == nil {
		return
	}
	isAttacker := func(core int) bool {
		for _, a := range attackers {
			if a == core {
				return true
			}
		}
		return false
	}
	for core := range r.coreHists {
		if isAttacker(core) {
			attacker.Merge(&r.coreHists[core])
		} else {
			victim.Merge(&r.coreHists[core])
		}
	}
	return
}

// Count adds n occurrences to a counting series at cycle now.
func (r *Recorder) Count(s SeriesID, now uint64, n int) {
	if r == nil {
		return
	}
	r.series[s].add(r.window, now, float64(n))
}

// Gauge records a level change of a gauge series at cycle now.
func (r *Recorder) Gauge(s SeriesID, now uint64, v float64) {
	if r == nil {
		return
	}
	r.series[s].set(r.window, now, v)
}

// BankBusy records that bank b was busy over cycles [start, end), and
// emits a bank-reservation span when tracing.
func (r *Recorder) BankBusy(bank int, start, end uint64, name string) {
	if r == nil {
		return
	}
	for len(r.banks) <= bank {
		r.banks = append(r.banks, series{kind: kindGauge})
	}
	r.banks[bank].addSpan(r.window, start, end)
	if r.trace != nil {
		r.trace.push(event{ph: 'X', name: name, tid: TrackBank0 + Track(bank), ts: start, dur: end - start})
	}
}

// EngineEvent records one simulator event fired at cycle now and tracks
// the end of simulated time.
func (r *Recorder) EngineEvent(now uint64) {
	if r == nil {
		return
	}
	r.series[SeriesEngineEvents].add(r.window, now, 1)
	if now > r.end {
		r.end = now
	}
}

// Span buffers a complete ('X') trace span.
func (r *Recorder) Span(t Track, name string, start, end uint64) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.push(event{ph: 'X', name: name, tid: t, ts: start, dur: end - start})
}

// SpanArg buffers a complete span with one numeric argument.
func (r *Recorder) SpanArg(t Track, name string, start, end uint64, k string, v uint64) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.push(event{ph: 'X', name: name, tid: t, ts: start, dur: end - start, argK: k, argV: v})
}

// AsyncBegin buffers the start of an async ('b') span keyed by id.
func (r *Recorder) AsyncBegin(t Track, name string, id, ts uint64) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.push(event{ph: 'b', name: name, tid: t, ts: ts, id: id})
}

// AsyncEnd buffers the end of an async span keyed by id.
func (r *Recorder) AsyncEnd(t Track, name string, id, ts uint64) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.push(event{ph: 'e', name: name, tid: t, ts: ts, id: id})
}

// Instant buffers an instant ('i') event.
func (r *Recorder) Instant(t Track, name string, ts uint64) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.push(event{ph: 'i', name: name, tid: t, ts: ts})
}

// InstantArg buffers an instant event with one numeric argument.
func (r *Recorder) InstantArg(t Track, name string, ts uint64, k string, v uint64) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.push(event{ph: 'i', name: name, tid: t, ts: ts, argK: k, argV: v})
}

// ResetHists clears the histograms (used at the warmup boundary so
// reported quantiles cover only measured transactions, mirroring how
// stats.Metrics are snapshot-subtracted).
func (r *Recorder) ResetHists() {
	if r == nil {
		return
	}
	for i := range r.hists {
		r.hists[i].Reset()
	}
	for i := range r.coreHists {
		r.coreHists[i].Reset()
	}
}

// Finish pins the end of simulated time (needed to finalize the last
// partial window of gauge series).
func (r *Recorder) Finish(endCycle uint64) {
	if r == nil {
		return
	}
	if endCycle > r.end {
		r.end = endCycle
	}
}

// Snapshot is the JSON-friendly histogram summary of one run.
type Snapshot struct {
	TxLatency HistSnapshot `json:"tx_latency"`
	ReadStall HistSnapshot `json:"read_stall"`
	WQStall   HistSnapshot `json:"wq_stall"`
	ReadRetry HistSnapshot `json:"read_retry"`
}

// Snapshot summarises the recorder's histograms.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return Snapshot{
		TxLatency: r.hists[HistTxLatency].Snapshot(),
		ReadStall: r.hists[HistReadStall].Snapshot(),
		WQStall:   r.hists[HistWQStall].Snapshot(),
		ReadRetry: r.hists[HistReadRetry].Snapshot(),
	}
}

// String renders the snapshot as an aligned table for -hist output.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %12s %10s\n",
		"histogram", "count", "p50", "p95", "p99", "mean", "max")
	row := func(name string, h HistSnapshot) {
		fmt.Fprintf(&b, "%-12s %10d %10d %10d %10d %12.1f %10d\n",
			name, h.Count, h.P50, h.P95, h.P99, h.Mean, h.Max)
	}
	row("tx_latency", s.TxLatency)
	row("read_stall", s.ReadStall)
	row("wq_stall", s.WQStall)
	row("read_retry", s.ReadRetry)
	return b.String()
}

// counterTrack is one windowed series rendered as a trace counter.
type counterTrack struct {
	name   string
	values []float64
	dense  bool // emit zero-valued windows too
}

// counterTracks finalizes the windowed series for trace export.
func (r *Recorder) counterTracks() []counterTrack {
	end := r.end
	occ := r.series[SeriesWQOccupancy].values(r.window, end)
	hits := r.series[SeriesCtrHits].values(r.window, end)
	miss := r.series[SeriesCtrMisses].values(r.window, end)
	coal := r.series[SeriesCoalesced].values(r.window, end)
	cenq := r.series[SeriesCtrEnqueues].values(r.window, end)
	tracks := []counterTrack{
		{name: "wq occupancy", values: occ, dense: true},
		{name: "ctr hit rate", values: rate(hits, miss)},
		{name: "coalesce rate", values: rate(coal, cenq)},
		{name: "engine events/window", values: r.series[SeriesEngineEvents].values(r.window, end)},
		{name: "bank remaps/window", values: r.series[SeriesBankRemaps].values(r.window, end)},
		{name: "ctr deferred/window", values: r.series[SeriesCtrDeferred].values(r.window, end)},
		{name: "tree writes/window", values: r.series[SeriesTreeWrites].values(r.window, end)},
		{name: "throttle stalls/window", values: r.series[SeriesThrottleStalls].values(r.window, end)},
		{name: "wear remaps/window", values: r.series[SeriesWearRemaps].values(r.window, end)},
		{name: "recovery work bounded/window", values: r.series[SeriesRecoveryBounded].values(r.window, end)},
		{name: "mshr occupancy", values: r.series[SeriesMSHROccupancy].values(r.window, end), dense: true},
		{name: "prefetch accuracy", values: rate(r.series[SeriesPrefetchUseful].values(r.window, end), sub(r.series[SeriesPrefetchIssued].values(r.window, end), r.series[SeriesPrefetchUseful].values(r.window, end)))},
		{name: "prefetch dropped/window", values: r.series[SeriesPrefetchDropped].values(r.window, end)},
	}
	for b := range r.banks {
		tracks = append(tracks, counterTrack{
			name:   fmt.Sprintf("bank %d busy", b),
			values: r.banks[b].values(r.window, end),
		})
	}
	return tracks
}

// SeriesValues finalizes one windowed series (tests and tools).
func (r *Recorder) SeriesValues(s SeriesID) []float64 {
	if r == nil {
		return nil
	}
	return r.series[s].values(r.window, r.end)
}

// BankBusyFractions finalizes the per-bank busy-fraction series.
func (r *Recorder) BankBusyFractions(bank int) []float64 {
	if r == nil || bank >= len(r.banks) {
		return nil
	}
	return r.banks[bank].values(r.window, r.end)
}

// rate returns a[i]/(a[i]+b[i]) per window, skipping empty windows.
// sub returns the elementwise difference a-b, padding the shorter
// input with zeros (windowed series may end at different cycles).
func sub(a, b []float64) []float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		out[i] = av - bv
	}
	return out
}

func rate(a, b []float64) []float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]float64, n)
	at := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if tot := at(a, i) + at(b, i); tot > 0 {
			out[i] = at(a, i) / tot
		}
	}
	return out
}
