package machine

import (
	"bytes"
	"testing"

	"supermem/internal/config"
	"supermem/internal/ctr"
)

var testKey = []byte("0123456789abcdef")

func newM(t testing.TB, mode Mode, opts ...Option) *Machine {
	t.Helper()
	m, err := New(mode, testKey, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStoreLoadRoundTrip(t *testing.T) {
	for _, mode := range []Mode{Unencrypted, WTRegister, WBNoBattery} {
		m := newM(t, mode)
		payload := []byte("hello persistent world")
		m.Store(4096, payload)
		if got := m.Load(4096, len(payload)); !bytes.Equal(got, payload) {
			t.Errorf("%v: Load = %q, want %q", mode, got, payload)
		}
	}
}

func TestStoreSpanningLines(t *testing.T) {
	m := newM(t, WTRegister)
	payload := make([]byte, 200) // spans 4 lines from offset 30
	for i := range payload {
		payload[i] = byte(i)
	}
	m.Store(4096+30, payload)
	if got := m.Load(4096+30, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("cross-line store/load mismatch")
	}
}

func TestFlushedDataSurvivesCrash(t *testing.T) {
	for _, mode := range []Mode{Unencrypted, WTRegister, WBBattery} {
		m := newM(t, mode)
		payload := []byte("durable bytes")
		m.Store(8192, payload)
		m.CLWB(8192)
		m.SFence()
		m.Crash()
		r := m.Recover()
		if got := r.Load(8192, len(payload)); !bytes.Equal(got, payload) {
			t.Errorf("%v: after crash Load = %q, want %q", mode, got, payload)
		}
	}
}

func TestUnflushedDataLostOnCrash(t *testing.T) {
	m := newM(t, WTRegister)
	m.Store(8192, []byte("going going gone"))
	// No CLWB.
	m.Crash()
	r := m.Recover()
	if got := r.Load(8192, 16); bytes.Equal(got, []byte("going going gone")) {
		t.Fatal("unflushed store survived a crash")
	}
}

func TestNVMHoldsCiphertext(t *testing.T) {
	m := newM(t, WTRegister)
	payload := []byte("secret payload!!")
	m.Store(0, payload)
	m.CLWB(0)
	raw := m.nvmData[0]
	if bytes.Contains(raw[:], payload) {
		t.Fatal("NVM holds plaintext under an encrypted mode — stolen-DIMM attack succeeds")
	}
	// Unencrypted mode by contrast leaks everything.
	u := newM(t, Unencrypted)
	u.Store(0, payload)
	u.CLWB(0)
	rawU := u.nvmData[0]
	if !bytes.Contains(rawU[:], payload) {
		t.Fatal("unencrypted NVM does not hold plaintext (model broken)")
	}
}

func TestConsecutiveWritesDifferentCiphertext(t *testing.T) {
	// Counter mode: rewriting identical plaintext must produce a
	// different ciphertext (defeats the single-line dictionary attack,
	// Section 2.2.2).
	m := newM(t, WTRegister)
	payload := []byte("same same same!!")
	m.Store(0, payload)
	m.CLWB(0)
	first := m.nvmData[0]
	m.Store(0, payload)
	m.CLWB(0)
	second := m.nvmData[0]
	if first == second {
		t.Fatal("identical plaintexts encrypted to identical ciphertexts across writes")
	}
}

func TestSameContentDifferentLinesDiffer(t *testing.T) {
	m := newM(t, WTRegister)
	payload := []byte("identical lines")
	m.Store(0, payload)
	m.CLWB(0)
	m.Store(64, payload)
	m.CLWB(64)
	if m.nvmData[0] == m.nvmData[64] {
		t.Fatal("same content in different lines encrypted identically (dictionary attack)")
	}
}

// The headline atomicity result: with the register, every crash point
// leaves flushed data decryptable; without it, some crash point yields
// garbage (Figure 6 vs Figure 7).
func TestRegisterAtomicityWindow(t *testing.T) {
	payload := []byte("flush me atomically, please now!")
	old := []byte("old data old data old data old!!")
	runUntil := func(mode Mode, crashAt int) ([]byte, *Machine) {
		m := newM(t, mode)
		// Establish an initial flushed version so "old data" exists,
		// then arm the crash sweep for the update under test only.
		m.Store(4096, old)
		m.CLWB(4096)
		m.ArmCrashAtPersist(crashAt)
		m.Store(4096, payload)
		m.CLWB(4096)
		r := m.Recover()
		return r.Load(4096, len(payload)), r
	}

	// With the register: every crash point gives old or new data.
	for crashAt := 0; crashAt < 4; crashAt++ {
		got, _ := runUntil(WTRegister, crashAt)
		if !bytes.Equal(got, payload) && !bytes.Equal(got, old) {
			t.Errorf("WTRegister crash@%d: data is neither old nor new: %q", crashAt, got)
		}
	}

	// Without the register there must exist a crash point where the
	// data is garbage (new counter persisted, old data stuck).
	sawGarbage := false
	for crashAt := 0; crashAt < 6; crashAt++ {
		got, _ := runUntil(WTNoRegister, crashAt)
		if !bytes.Equal(got, payload) && !bytes.Equal(got, old) {
			sawGarbage = true
		}
	}
	if !sawGarbage {
		t.Fatal("WTNoRegister: no crash point corrupted the data — the Figure 6 window is not modelled")
	}
}

func TestWBNoBatteryLosesCounters(t *testing.T) {
	m := newM(t, WBNoBattery)
	payload := []byte("needs its counter")
	m.Store(0, payload)
	m.CLWB(0)
	m.SFence()
	m.Crash()
	r := m.Recover()
	if got := r.Load(0, len(payload)); bytes.Equal(got, payload) {
		t.Fatal("write-back counters survived a crash without battery")
	}
}

func TestWBBatteryPreservesCounters(t *testing.T) {
	m := newM(t, WBBattery)
	payload := []byte("battery to the rescue")
	m.Store(0, payload)
	m.CLWB(0)
	m.Crash()
	r := m.Recover()
	if got := r.Load(0, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("battery-backed counters lost: got %q", got)
	}
}

func TestCleanCLWBIsNoop(t *testing.T) {
	m := newM(t, WTRegister)
	m.Store(0, []byte("x"))
	m.CLWB(0)
	n := m.Persists()
	m.CLWB(0) // clean now
	if m.Persists() != n {
		t.Fatal("clean CLWB persisted something")
	}
}

func TestCrashedMachineIsInert(t *testing.T) {
	m := newM(t, WTRegister)
	m.Store(0, []byte("a"))
	m.Crash()
	if !m.Crashed() {
		t.Fatal("Crashed() false after Crash()")
	}
	m.Store(64, []byte("b"))
	m.CLWB(64)
	r := m.Recover()
	if got := r.Load(64, 1); got[0] == 'b' {
		t.Fatal("post-crash store took effect")
	}
}

func TestMinorOverflowReencryptsAndStaysReadable(t *testing.T) {
	m := newM(t, WTRegister)
	neighbour := []byte("neighbour line under old minor!!")
	m.Store(64, neighbour)
	m.CLWB(64)
	// Hammer line 0 of the same page past the 7-bit minor limit.
	for i := 0; i <= ctr.MinorMax+5; i++ {
		m.Store(0, []byte{byte(i)})
		m.CLWB(0)
	}
	// After the overflow-triggered page re-encryption, both lines must
	// still read correctly, before and after a crash.
	if got := m.Load(0, 1); got[0] != byte(ctr.MinorMax+5) {
		t.Fatalf("hammered line reads %d", got[0])
	}
	if got := m.Load(64, len(neighbour)); !bytes.Equal(got, neighbour) {
		t.Fatalf("neighbour corrupted by re-encryption: %q", got)
	}
	m.Crash()
	r := m.Recover()
	if got := r.Load(64, len(neighbour)); !bytes.Equal(got, neighbour) {
		t.Fatalf("neighbour corrupted after crash: %q", got)
	}
	if got := r.Load(0, 1); got[0] != byte(ctr.MinorMax+5) {
		t.Fatalf("hammered line reads %d after crash", got[0])
	}
	// And the page's counter really did roll its major.
	if cl := r.nvmCtr[0]; cl.Major != 1 {
		t.Fatalf("major counter = %d after overflow, want 1", cl.Major)
	}
}

// Every crash point inside a page re-encryption must be recoverable via
// the ADR-protected RSR (Section 3.4.4).
func TestReencryptionCrashRecoverableAtEveryStep(t *testing.T) {
	// prep writes every line of page 0 and then drives line 0's minor
	// counter to its maximum, so the NEXT flush of line 0 re-encrypts.
	prep := func() *Machine {
		m := newM(t, WTRegister)
		for i := 0; i < config.LinesPerPage; i++ {
			m.Store(uint64(i*config.LineSize), []byte{byte(i), byte(i + 1)})
			m.CLWB(uint64(i * config.LineSize))
		}
		for i := 1; i < ctr.MinorMax; i++ { // minor: 1 -> 127
			m.Store(0, []byte{0xAA})
			m.CLWB(0)
		}
		return m
	}
	base := prep()
	atLimit := base.Persists()
	// The next CLWB triggers re-encryption: 64 line steps + 1 counter
	// step + 1 pair step for the triggering write itself.
	base.Store(0, []byte{0xBB})
	base.CLWB(0)
	totalAfter := base.Persists()
	if totalAfter-atLimit != config.LinesPerPage+2 {
		t.Fatalf("re-encryption consumed %d persists, want %d", totalAfter-atLimit, config.LinesPerPage+2)
	}

	for crashAt := 0; crashAt < totalAfter-atLimit; crashAt++ {
		m := prep()
		m.ArmCrashAtPersist(crashAt)
		m.Store(0, []byte{0xBB})
		m.CLWB(0)
		r := m.Recover()
		// Every *other* line of the page must still be readable.
		for i := 1; i < config.LinesPerPage; i++ {
			got := r.Load(uint64(i*config.LineSize), 2)
			if got[0] != byte(i) || got[1] != byte(i+1) {
				t.Fatalf("crash@%d: line %d corrupted: %v", crashAt, i, got[:2])
			}
		}
		// Line 0 must be one of its legal values (0xAA or 0xBB).
		got := r.Load(0, 1)
		if got[0] != 0xAA && got[0] != 0xBB {
			t.Fatalf("crash@%d: line 0 is garbage: %#x", crashAt, got[0])
		}
	}
}

// A crash inside a re-encryption, then a SECOND crash while the
// recovery's RSR state machine is finishing the job: the RSR's done
// bits are persisted per line, so the third boot picks up exactly
// where the second died and the page is intact. This is the nested
// window the crash fuzzer's -nested flag sweeps.
func TestReencryptionSurvivesNestedRecoveryCrash(t *testing.T) {
	prep := func() *Machine {
		m := newM(t, WTRegister)
		for i := 0; i < config.LinesPerPage; i++ {
			m.Store(uint64(i*config.LineSize), []byte{byte(i), byte(i + 1)})
			m.CLWB(uint64(i * config.LineSize))
		}
		for i := 1; i < ctr.MinorMax; i++ { // minor: 1 -> 127
			m.Store(0, []byte{0xAA})
			m.CLWB(0)
		}
		return m
	}
	// Crash a third of the way through the 64-line sweep, so the
	// recovery path has plenty of pending lines left to crash inside.
	outerCrash := config.LinesPerPage / 3
	probe := prep()
	probe.ArmCrashAtPersist(outerCrash)
	probe.Store(0, []byte{0xBB})
	probe.CLWB(0)
	if !probe.Crashed() {
		t.Fatal("outer crash never struck")
	}
	rec := probe.Recover()
	recoverySteps := rec.Persists()
	if recoverySteps == 0 {
		t.Fatal("recovery finished the re-encryption without persisting — nothing to nest into")
	}

	for nested := 0; nested < recoverySteps; nested++ {
		m := prep()
		m.ArmCrashAtPersist(outerCrash)
		m.Store(0, []byte{0xBB})
		m.CLWB(0)
		r := m.Recover(WithCrashAtPersist(nested))
		if !r.Crashed() {
			t.Fatalf("nested crash@%d never struck (recovery has %d steps)", nested, recoverySteps)
		}
		// Third boot: recovery must run to completion this time.
		r2 := r.Recover()
		if r2.Crashed() {
			t.Fatalf("nested crash@%d: third boot crashed", nested)
		}
		for i := 1; i < config.LinesPerPage; i++ {
			got := r2.Load(uint64(i*config.LineSize), 2)
			if got[0] != byte(i) || got[1] != byte(i+1) {
				t.Fatalf("nested crash@%d: line %d corrupted: %v", nested, i, got[:2])
			}
		}
		got := r2.Load(0, 1)
		if got[0] != 0xAA && got[0] != 0xBB {
			t.Fatalf("nested crash@%d: line 0 is garbage: %#x", nested, got[0])
		}
		// The finished page must sit under the new major with no RSR
		// left armed.
		if cl := r2.nvmCtr[0]; cl.Major != 1 {
			t.Fatalf("nested crash@%d: major = %d after finished re-encryption, want 1", nested, cl.Major)
		}
		if r2.rsr != nil {
			t.Fatalf("nested crash@%d: RSR still armed after full recovery", nested)
		}
	}
}

func TestRecoverIsDeepCopy(t *testing.T) {
	m := newM(t, WTRegister)
	m.Store(0, []byte("v1"))
	m.CLWB(0)
	m.Crash()
	r := m.Recover()
	r.Store(0, []byte("v2"))
	r.CLWB(0)
	r2 := m.Recover() // recover the ORIGINAL again
	if got := r2.Load(0, 2); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("second recovery sees %q — recovery aliases state", got)
	}
}

func TestModeString(t *testing.T) {
	if WTRegister.String() != "WT+Register" || Mode(99).String() == "" {
		t.Fatal("mode names broken")
	}
	if Unencrypted.Encrypted() || !WBNoBattery.Encrypted() {
		t.Fatal("Encrypted() wrong")
	}
}

func TestDirtyCacheLines(t *testing.T) {
	m := newM(t, WTRegister)
	m.Store(0, []byte("a"))
	m.Store(64, []byte("b"))
	if m.DirtyCacheLines() != 2 {
		t.Fatalf("DirtyCacheLines = %d, want 2", m.DirtyCacheLines())
	}
	m.CLWB(0)
	if m.DirtyCacheLines() != 1 {
		t.Fatalf("DirtyCacheLines = %d after flush, want 1", m.DirtyCacheLines())
	}
}

func TestBadKey(t *testing.T) {
	if _, err := New(WTRegister, []byte("short")); err == nil {
		t.Fatal("New accepted a short key")
	}
}
