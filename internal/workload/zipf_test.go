package workload

import (
	"math/rand"
	"testing"
)

// TestShardSeedDistinct: shard seeds must be pairwise distinct across
// (base seed, shard) pairs whose naive additive derivations collide.
// Under the old seed + shard*7919 rule, base seeds differing by a
// multiple of the stride alias each other's shard streams — e.g.
// (seed=1, shard=1) and (seed=7920, shard=0) both produced 7920, so two
// different experiments silently served identical request streams.
func TestShardSeedDistinct(t *testing.T) {
	seeds := []int64{1, 2, 7920, 15839, 42}
	seen := make(map[int64][2]int64)
	for _, s := range seeds {
		for k := 0; k < 64; k++ {
			d := ShardSeed(s, k)
			if prev, dup := seen[d]; dup {
				t.Fatalf("ShardSeed(%d, %d) == ShardSeed(%d, %d) == %d",
					s, k, prev[0], prev[1], d)
			}
			seen[d] = [2]int64{s, int64(k)}
		}
	}
}

// TestShardSeedPure: the derivation is a pure function of (seed, shard),
// so shard k's stream can be regenerated in isolation at any time.
func TestShardSeedPure(t *testing.T) {
	for k := 0; k < 8; k++ {
		if a, b := ShardSeed(99, k), ShardSeed(99, k); a != b {
			t.Fatalf("ShardSeed(99, %d) not deterministic: %d vs %d", k, a, b)
		}
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Fatal("adjacent base seeds collide at shard 0")
	}
}

// TestZipfSkew: at theta 0.99 rank 0 dominates; at theta 0 the draw is
// close to uniform.
func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 200_000

	z, err := NewZipf(rand.New(rand.NewSource(1)), n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] < draws/10 {
		t.Errorf("theta=0.99: rank 0 drawn %d/%d times, want a dominant hot key", counts[0], draws)
	}
	for r := 1; r < n; r++ {
		if counts[r] > counts[0] {
			t.Errorf("theta=0.99: rank %d (%d draws) beat rank 0 (%d draws)", r, counts[r], counts[0])
		}
	}

	u, err := NewZipf(rand.New(rand.NewSource(1)), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	ucounts := make([]int, n)
	for i := 0; i < draws; i++ {
		ucounts[u.Next()]++
	}
	mean := draws / n
	for r, c := range ucounts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("theta=0: rank %d drawn %d times, want near %d", r, c, mean)
		}
	}
}

func TestZipfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 0, 0.5); err == nil {
		t.Error("empty keyspace accepted")
	}
	for _, theta := range []float64{-0.1, 1.0, 1.5} {
		if _, err := NewZipf(rng, 10, theta); err == nil {
			t.Errorf("theta %v accepted", theta)
		}
	}
}

// TestZipfDeterministic: same seed, same stream.
func TestZipfDeterministic(t *testing.T) {
	draw := func() []uint64 {
		z, err := NewZipf(rand.New(rand.NewSource(5)), 512, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, 100)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}
