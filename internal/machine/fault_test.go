package machine

import (
	"bytes"
	"testing"

	"supermem/internal/config"
	"supermem/internal/fault"
)

// flush stores and persists one line-aligned payload.
func flush(m *Machine, addr uint64, payload []byte) {
	m.Store(addr, payload)
	for a := addr &^ (config.LineSize - 1); a < addr+uint64(len(payload)); a += config.LineSize {
		m.CLWB(a)
	}
	m.SFence()
}

func TestMachineBitFlipDetectedOnRead(t *testing.T) {
	for _, mode := range []Mode{Unencrypted, WTRegister, WBNoBattery, Osiris} {
		m := newM(t, mode)
		// Two flipped bits exceed SECDED correction: the read must be
		// flagged, and the loaded plaintext differs from what was stored
		// (the corruption is not hidden).
		plan := fault.Plan{Injections: []fault.Injection{
			{Kind: fault.BitFlip, Step: 1, Target: 0, Arg: 2 | 11<<8},
		}}
		m.SetInjector(fault.NewInjector(plan, fault.ECCSECDED()))
		payload := bytes.Repeat([]byte{0xC3}, config.LineSize)
		flush(m, 4096, payload)
		got := m.Load(4096, config.LineSize)
		if bytes.Equal(got, payload) {
			t.Errorf("%v: corrupted line read back clean", mode)
		}
		if s := m.FaultStats(); s.TotalDetected() == 0 || s.TotalSilent() != 0 {
			t.Errorf("%v: stats = %+v, want detected>0 silent=0", mode, s)
		}
	}
}

func TestMachineBitFlipCorrectedTransparently(t *testing.T) {
	m := newM(t, WTRegister)
	plan := fault.Plan{Injections: []fault.Injection{
		{Kind: fault.BitFlip, Step: 1, Target: 0, Arg: 1 | 5<<8},
	}}
	m.SetInjector(fault.NewInjector(plan, fault.ECCSECDED()))
	payload := bytes.Repeat([]byte{0x7E}, config.LineSize)
	flush(m, 4096, payload)
	if got := m.Load(4096, config.LineSize); !bytes.Equal(got, payload) {
		t.Fatal("single-bit flip not corrected by SECDED")
	}
	if s := m.FaultStats(); s.TotalCorrected() == 0 {
		t.Fatalf("stats = %+v, want corrected>0", s)
	}
}

func TestMachineECCOffIsSilent(t *testing.T) {
	m := newM(t, WTRegister)
	plan := fault.Plan{Injections: []fault.Injection{
		{Kind: fault.BitFlip, Step: 1, Target: 0, Arg: 1 | 5<<8},
	}}
	m.SetInjector(fault.NewInjector(plan, fault.ECCOff()))
	payload := bytes.Repeat([]byte{0x7E}, config.LineSize)
	flush(m, 4096, payload)
	if got := m.Load(4096, config.LineSize); bytes.Equal(got, payload) {
		t.Fatal("corruption vanished with ECC off")
	}
	if s := m.FaultStats(); s.TotalSilent() == 0 || s.TotalDetected() != 0 {
		t.Fatalf("stats = %+v, want silent>0 detected=0", s)
	}
}

func TestMachineCtrCorruptGarblesPage(t *testing.T) {
	// Flipping bits of the persisted counter line garbles decryption of
	// the data it covers after a crash (the volatile counter cache is
	// gone, so the corrupt persisted copy is consulted) — and strong ECC
	// detects the counter-line corruption at that read.
	m := newM(t, WTRegister)
	plan := fault.Plan{Injections: []fault.Injection{
		{Kind: fault.CtrCorrupt, Step: 2, Target: 0, Arg: 3 | 21<<8},
	}}
	m.SetInjector(fault.NewInjector(plan, fault.ECCStrong()))
	payload := bytes.Repeat([]byte{0x42}, config.LineSize)
	flush(m, 4096, payload)
	flush(m, 4096+config.LineSize, payload) // step 2: fires the ctr fault
	m.Crash()
	r := m.Recover()
	r.Load(4096, config.LineSize)
	if s := r.FaultStats(); s.CtrDetected == 0 {
		t.Fatalf("stats = %+v, want ctr detection after recovery read", s)
	}
}

func TestMachineTornWriteDetected(t *testing.T) {
	m := newM(t, WTRegister)
	plan := fault.Plan{Injections: []fault.Injection{
		{Kind: fault.TornWrite, Step: 2, Arg: 0x0F},
	}}
	m.SetInjector(fault.NewInjector(plan, fault.ECCStrong()))
	payload := bytes.Repeat([]byte{0x11}, config.LineSize)
	flush(m, 4096, payload)
	flush(m, 4096, bytes.Repeat([]byte{0x22}, config.LineSize)) // torn
	m.Load(4096, config.LineSize)
	if s := m.FaultStats(); s.TornWrites != 1 || s.TotalDetected() == 0 {
		t.Fatalf("stats = %+v, want torn=1 detected>0", s)
	}
}

func TestInjectorStepSurvivesRecover(t *testing.T) {
	// The injector clock is monotone across Recover even though the
	// machine's persist counter resets — so a schedule can target the
	// recovery itself.
	m := newM(t, WTRegister)
	m.SetInjector(fault.NewInjector(fault.Plan{}, fault.ECCStrong()))
	flush(m, 4096, bytes.Repeat([]byte{1}, config.LineSize))
	before := m.Injector().Step()
	if before == 0 {
		t.Fatal("injector clock did not advance")
	}
	m.Crash()
	r := m.Recover()
	if r.Injector() != m.Injector() {
		t.Fatal("Recover did not inherit the injector")
	}
	flush(r, 8192, bytes.Repeat([]byte{2}, config.LineSize))
	if r.Injector().Step() <= before {
		t.Fatal("injector clock reset across Recover")
	}
}

func TestRecoverTwiceIsStable(t *testing.T) {
	// Satellite coverage: Recover invoked twice on the same crashed
	// machine must produce two independent, equally-correct successors —
	// recovery reads persistent state only and must not mutate the
	// predecessor.
	for _, mode := range []Mode{Unencrypted, WTRegister, WBBattery, Osiris} {
		m := newM(t, mode)
		payload := []byte("stable across double recovery")
		m.Store(4096, payload)
		m.CLWB(4096)
		m.SFence()
		m.Crash()
		r1 := m.Recover()
		r2 := m.Recover()
		got1 := r1.Load(4096, len(payload))
		got2 := r2.Load(4096, len(payload))
		if !bytes.Equal(got1, payload) || !bytes.Equal(got2, payload) {
			t.Errorf("%v: double recovery diverged: %q vs %q (want %q)", mode, got1, got2, payload)
		}
		// And a successor can itself recover (recover-of-recovered).
		r1.Crash()
		r3 := r1.Recover()
		if got := r3.Load(4096, len(payload)); !bytes.Equal(got, payload) {
			t.Errorf("%v: second-generation recovery lost data: %q", mode, got)
		}
	}
}

func TestLoadStoreSpanLineBoundary(t *testing.T) {
	// Satellite coverage: sub-line accesses that straddle a line
	// boundary touch both lines coherently; persisting both lines makes
	// the whole span durable. This documents the current behavior:
	// Store/Load split at line granularity and CLWB persists exactly one
	// line, so a spanning store needs one CLWB per touched line.
	for _, mode := range []Mode{Unencrypted, WTRegister, WBBattery} {
		m := newM(t, mode)
		payload := []byte("0123456789abcdef")
		addr := uint64(4096 + config.LineSize - 7) // 7 bytes in line 0, rest in line 1
		m.Store(addr, payload)
		if got := m.Load(addr, len(payload)); !bytes.Equal(got, payload) {
			t.Fatalf("%v: pre-flush spanning load = %q", mode, got)
		}
		// Persisting only the first line leaves the tail volatile.
		m.CLWB(addr)
		m.SFence()
		if m.DirtyCacheLines() != 1 {
			t.Fatalf("%v: one CLWB should leave exactly the second line dirty", mode)
		}
		m.CLWB(addr + uint64(len(payload)) - 1)
		m.SFence()
		m.Crash()
		r := m.Recover()
		if got := r.Load(addr, len(payload)); !bytes.Equal(got, payload) {
			t.Fatalf("%v: spanning store not durable after both CLWBs: %q", mode, got)
		}
	}
}
