// Command supermem-crash is the crash-consistency fuzzer: it runs a
// workload on the byte-accurate encrypted machine, injects power
// failures at every persistence step (or a sampled subset), recovers,
// and verifies the structure's invariants against a deterministic
// replay.
//
// Usage:
//
//	supermem-crash                           # sweep every mode x workload
//	supermem-crash -mode WB-NoBattery -workload btree -steps 10
//	supermem-crash -stride 5                 # sample every 5th point
package main

import (
	"flag"
	"fmt"
	"os"

	"supermem"
)

var modes = map[string]supermem.CrashMode{
	"SuperMem":      supermem.CrashSuperMem,
	"WT-NoRegister": supermem.CrashNoRegister,
	"WB+Battery":    supermem.CrashWBBattery,
	"WB-NoBattery":  supermem.CrashWBNoBattery,
	"Osiris":        supermem.CrashOsiris,
	"Unencrypted":   supermem.CrashUnencrypted,
}

func main() {
	var (
		modeName = flag.String("mode", "", "machine design (default: all): SuperMem, WT-NoRegister, WB+Battery, WB-NoBattery, Osiris, Unencrypted")
		wl       = flag.String("workload", "", "workload (default: all): array, queue, btree, hashtable, rbtree")
		steps    = flag.Int("steps", 8, "transactions per run")
		stride   = flag.Int("stride", 1, "test every stride-th persistence step")
	)
	flag.Parse()

	var runModes []string
	if *modeName != "" {
		if _, ok := modes[*modeName]; !ok {
			fmt.Fprintf(os.Stderr, "supermem-crash: unknown mode %q\n", *modeName)
			os.Exit(2)
		}
		runModes = []string{*modeName}
	} else {
		runModes = []string{"SuperMem", "WT-NoRegister", "WB+Battery", "WB-NoBattery", "Osiris", "Unencrypted"}
	}
	workloads := supermem.Workloads()
	if *wl != "" {
		workloads = []string{*wl}
	}

	anyInconsistent := false
	for _, mn := range runModes {
		for _, w := range workloads {
			res, err := supermem.CrashSweep(modes[mn], w, *steps, *stride)
			if err != nil {
				fmt.Fprintf(os.Stderr, "supermem-crash: %s/%s: %v\n", mn, w, err)
				os.Exit(1)
			}
			verdict := "CONSISTENT"
			if !res.Consistent() {
				verdict = "INCONSISTENT"
				anyInconsistent = true
			}
			fmt.Printf("%-14s %-10s %4d points %4d crashed  %s\n", mn, w, res.TotalPoints, res.Crashed, verdict)
			for i, r := range res.Inconsistent {
				if i >= 3 {
					fmt.Printf("    ... and %d more\n", len(res.Inconsistent)-3)
					break
				}
				fmt.Printf("    crash@%d after %d txs: %s\n", r.CrashStep, r.CompletedSteps, r.Detail)
			}
		}
	}
	// Corruption on designs without counter atomicity is the expected
	// demonstration, not a failure of the tool.
	_ = anyInconsistent
}
